// R5 partition initialization and the §6 optimizations: full-copy reads,
// the previous-partition skip, and log-suffix catch-up.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace vp {
namespace {

using core::RecoveryMode;
using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using testutil::RunTxn;
using testutil::Write;

ClusterConfig RecoveryConfig(RecoveryMode mode, uint64_t seed = 5) {
  ClusterConfig c;
  c.n_processors = 5;
  c.n_objects = 3;
  c.seed = seed;
  c.protocol = Protocol::kVirtualPartition;
  c.vp.recovery = mode;
  return c;
}

/// Partitions, writes k values to obj in the majority, heals, and returns
/// the cluster for inspection.
void WriteBehindPartition(Cluster& cluster, ObjectId obj, int k) {
  cluster.RunFor(sim::Seconds(1));
  ASSERT_TRUE(cluster.VpConverged());
  cluster.graph().Partition({{0, 1}, {2, 3, 4}});
  cluster.RunFor(sim::Seconds(1));
  for (int i = 0; i < k; ++i) {
    auto t = RunTxn(cluster, 3, {Write(obj, "v" + std::to_string(i))});
    ASSERT_TRUE(t.committed) << t.failure.ToString();
    cluster.RunFor(sim::Millis(50));
  }
  cluster.graph().Heal();
  cluster.RunFor(sim::Seconds(2));
  ASSERT_TRUE(cluster.VpConverged());
}

TEST(VpRecovery, FullReadBringsStaleCopiesUpToDate) {
  Cluster cluster(RecoveryConfig(RecoveryMode::kFullRead));
  WriteBehindPartition(cluster, 0, 3);
  for (ProcessorId p = 0; p < 5; ++p) {
    EXPECT_EQ(cluster.store(p).Read(0).value().value, "v2") << "p" << p;
  }
  // Full-read mode reads remote copies on every join.
  EXPECT_GT(cluster.AggregateStats().recovery_reads_sent, 0u);
  auto cert = cluster.Certify();
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(VpRecovery, LogCatchupBringsStaleCopiesUpToDate) {
  Cluster cluster(RecoveryConfig(RecoveryMode::kLogCatchup));
  WriteBehindPartition(cluster, 0, 4);
  for (ProcessorId p = 0; p < 5; ++p) {
    EXPECT_EQ(cluster.store(p).Read(0).value().value, "v3") << "p" << p;
  }
  // Catch-up fetched log records rather than whole values.
  EXPECT_GT(cluster.AggregateStats().recovery_log_records, 0u);
  auto cert = cluster.Certify();
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(VpRecovery, LogCatchupFetchesOnlyMissedSuffix) {
  // The minority copies missed exactly 4 writes of one object; catch-up
  // should apply ~4 records per healing copy, not the whole history.
  Cluster cluster(RecoveryConfig(RecoveryMode::kLogCatchup));
  WriteBehindPartition(cluster, 0, 4);
  const auto stats = cluster.AggregateStats();
  // Two minority nodes catching up 4 records each (majority members skip
  // or fetch empty suffixes); allow slack for view churn re-initialization.
  EXPECT_GE(stats.recovery_log_records, 8u);
  EXPECT_LE(stats.recovery_log_records, 40u);
}

TEST(VpRecovery, PreviousSkipAvoidsWorkOnCleanSplit) {
  // When a partition SPLITS, every member of the new majority partition
  // comes from the same previous partition: no initialization needed.
  ClusterConfig config = RecoveryConfig(RecoveryMode::kPreviousSkip);
  Cluster cluster(config);
  cluster.RunFor(sim::Seconds(1));
  ASSERT_TRUE(cluster.VpConverged());
  const auto before = cluster.AggregateStats();

  cluster.graph().Partition({{0, 1}, {2, 3, 4}});
  cluster.RunFor(sim::Seconds(1));
  const auto after = cluster.AggregateStats();
  // The split produced joins but no recovery reads (all-same-previous).
  EXPECT_GT(after.vp_joins, before.vp_joins);
  EXPECT_EQ(after.recovery_reads_sent, before.recovery_reads_sent);
  EXPECT_GT(after.recovery_skipped_objects, before.recovery_skipped_objects);

  // And the data is still correct afterwards.
  auto t = RunTxn(cluster, 3, {Write(0, "post-split")});
  EXPECT_TRUE(t.committed) << t.failure.ToString();
  cluster.RunFor(sim::Millis(100));
  auto cert = cluster.Certify();
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(VpRecovery, FullReadModeDoesNotSkipOnSplit) {
  ClusterConfig config = RecoveryConfig(RecoveryMode::kFullRead);
  Cluster cluster(config);
  cluster.RunFor(sim::Seconds(1));
  const auto before = cluster.AggregateStats();
  cluster.graph().Partition({{0, 1}, {2, 3, 4}});
  cluster.RunFor(sim::Seconds(1));
  const auto after = cluster.AggregateStats();
  // The baseline §5 protocol re-reads copies even on a clean split.
  EXPECT_GT(after.recovery_reads_sent, before.recovery_reads_sent);
  EXPECT_EQ(after.recovery_skipped_objects, before.recovery_skipped_objects);
}

TEST(VpRecovery, ObjectsLockedDuringInitializationThenReleased) {
  Cluster cluster(RecoveryConfig(RecoveryMode::kFullRead));
  WriteBehindPartition(cluster, 1, 2);
  // After the dust settles every object is unlocked everywhere.
  for (ProcessorId p = 0; p < 5; ++p) {
    EXPECT_TRUE(cluster.vp_node(p).locked_objects().empty()) << "p" << p;
  }
}

TEST(VpRecovery, ReadAfterHealSeesLatestValue) {
  for (RecoveryMode mode : {RecoveryMode::kFullRead,
                            RecoveryMode::kPreviousSkip,
                            RecoveryMode::kLogCatchup}) {
    Cluster cluster(RecoveryConfig(mode, 17));
    WriteBehindPartition(cluster, 0, 3);
    // A read served by a previously-stale copy must return the latest value.
    auto t = RunTxn(cluster, 0, {testutil::Read(0)});
    ASSERT_TRUE(t.committed) << t.failure.ToString();
    EXPECT_EQ(t.reads[0], "v2") << "mode " << static_cast<int>(mode);
    cluster.RunFor(sim::Millis(100));
    auto cert = cluster.Certify();
    EXPECT_TRUE(cert.ok) << cert.detail;
  }
}

TEST(VpRecovery, MultipleObjectsRecoverIndependently) {
  Cluster cluster(RecoveryConfig(RecoveryMode::kFullRead, 23));
  cluster.RunFor(sim::Seconds(1));
  cluster.graph().Partition({{0, 1}, {2, 3, 4}});
  cluster.RunFor(sim::Seconds(1));
  for (ObjectId obj = 0; obj < 3; ++obj) {
    auto t = RunTxn(cluster, 2, {Write(obj, "obj" + std::to_string(obj))});
    ASSERT_TRUE(t.committed) << t.failure.ToString();
  }
  cluster.graph().Heal();
  cluster.RunFor(sim::Seconds(2));
  for (ProcessorId p = 0; p < 5; ++p) {
    for (ObjectId obj = 0; obj < 3; ++obj) {
      EXPECT_EQ(cluster.store(p).Read(obj).value().value,
                "obj" + std::to_string(obj))
          << "p" << p << " obj" << obj;
    }
  }
}

}  // namespace
}  // namespace vp
