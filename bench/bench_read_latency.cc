// Experiment E3b (paper §1: replication should "decrease data retrieval
// costs by reading local or close copies"): commit latency of read-only
// transactions on a WAN of 3 sites, where intra-site messages are ~20×
// cheaper than inter-site ones. The VP protocol's nearest-copy reads stay
// inside the client's site; majority voting must cross the WAN for every
// read; ROWA matches VP on reads.
#include <cstdio>

#include "bench_util.h"
#include "net/topology_gen.h"

namespace vp::bench {
namespace {

RunResult RunOne(harness::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.n_processors = 6;  // 3 sites × 2 processors.
  config.n_objects = 16;
  config.seed = seed;
  config.protocol = protocol;
  // δ must bound the worst one-hop delay: max_delay × wan_cost.
  config.vp.delta = sim::Millis(100);
  config.vp.probe_period = sim::Millis(500);
  if (protocol == harness::Protocol::kMajorityVoting) {
    // Use the generic quorum node so the op timeout can be WAN-scaled.
    config.protocol = harness::Protocol::kQuorum;
    config.quorum.read_quorum = 4;  // Majority of 6.
    config.quorum.write_quorum = 4;
    config.quorum.op_timeout = sim::Millis(500);
    config.quorum.display_name = "majority-voting";
  }
  harness::Cluster cluster(config);
  net::MakeWanCosts(&cluster.graph(), /*sites=*/3, /*lan_cost=*/1.0,
                    /*wan_cost=*/20.0);

  RunOptions opts;
  opts.measure = sim::Seconds(20);
  opts.client.read_fraction = 1.0;  // Read-only: isolate read latency.
  opts.client.ops_per_txn = 2;
  opts.client.think_time = sim::Millis(20);
  opts.client.seed = seed;
  return RunWorkload(cluster, opts);
}

void Main() {
  std::printf(
      "E3b: read-only commit latency on a 3-site WAN (LAN cost 1, WAN cost "
      "20)\n");
  std::printf(
      "Paper claim: reading the nearest copy keeps reads off the WAN.\n\n");
  Table table({"protocol", "avg commit latency (ms)", "committed", "1SR"});
  for (harness::Protocol proto :
       {harness::Protocol::kVirtualPartition,
        harness::Protocol::kMajorityVoting, harness::Protocol::kRowa}) {
    RunResult r = RunOne(proto, 1100);
    table.AddRow({harness::ProtocolName(proto),
                  Fmt(r.avg_commit_latency_ms), std::to_string(r.committed),
                  r.certified_1sr ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nEvery processor holds a copy, so VP and ROWA reads are local "
      "(sub-ms);\nmajority voting needs ⌈7/2⌉=4 of 6 copies, at least two "
      "of them across\nthe WAN, on every logical read.\n");
}

}  // namespace
}  // namespace vp::bench

int main() {
  vp::bench::Main();
  return 0;
}
