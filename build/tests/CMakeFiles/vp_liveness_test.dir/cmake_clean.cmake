file(REMOVE_RECURSE
  "CMakeFiles/vp_liveness_test.dir/vp_liveness_test.cc.o"
  "CMakeFiles/vp_liveness_test.dir/vp_liveness_test.cc.o.d"
  "vp_liveness_test"
  "vp_liveness_test.pdb"
  "vp_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
