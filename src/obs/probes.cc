#include "obs/probes.h"

namespace vp::obs {

namespace {
constexpr const char* kRuleNames[] = {
    "view-uniqueness",
    "epoch-monotonic",
    "commit-before-read",
    "durable-read",
};
}  // namespace

const char* ProbeRuleName(ProbeRule rule) {
  const auto i = static_cast<size_t>(rule);
  return i < sizeof(kRuleNames) / sizeof(kRuleNames[0]) ? kRuleNames[i]
                                                        : "unknown";
}

ProbeEngine::ProbeEngine(bool thread_safe, MetricsRegistry* registry)
    : thread_safe_(thread_safe) {
  if (registry == nullptr) registry = MetricsRegistry::Default();
  ctr_events_ = registry->counter("probe.events");
  ctr_violations_ = registry->counter("probe.violations");
}

void ProbeEngine::AddKnownValue(std::string_view value) {
  const uint64_t h = FlightRecorder::HashValue(value);
  if (thread_safe_) {
    std::lock_guard<std::mutex> lock(mu_);
    known_values_.insert(h);
  } else {
    known_values_.insert(h);
  }
}

void ProbeEngine::OnFdrEvent(const FdrEvent& e) {
  // Our own violation echoes re-enter here via the recorder; they carry no
  // new information and recursing on them would deadlock the mutex.
  if (e.kind == FdrKind::kProbeViolation) return;
  ctr_events_->Increment();
  if (thread_safe_) {
    std::lock_guard<std::mutex> lock(mu_);
    Check(e);
  } else {
    Check(e);
  }
}

void ProbeEngine::Check(const FdrEvent& e) {
  switch (e.kind) {
    case FdrKind::kViewCommit: {
      auto [it, inserted] = view_members_.emplace(e.a, e.b);
      if (!inserted && it->second != e.b) {
        Flag(e, ProbeRule::kViewUniqueness,
             "vp " + std::to_string(e.a >> 8) + "," +
                 std::to_string(e.a & 0xff) + " committed with members 0x" +
                 std::to_string(it->second) + " then 0x" +
                 std::to_string(e.b));
      }
      break;
    }
    case FdrKind::kEpochSwitch: {
      auto [it, inserted] = last_epoch_.emplace(e.node, e.a);
      if (!inserted) {
        if (e.a < it->second) {
          Flag(e, ProbeRule::kEpochMonotonic,
               "node " + std::to_string(e.node) + " regressed epoch " +
                   std::to_string(it->second) + " -> " +
                   std::to_string(e.a));
        } else {
          it->second = e.a;
        }
      }
      break;
    }
    case FdrKind::kOutcomeApplied:
      if (e.a != 0) outcome_applied_.emplace(e.node, e.txn);
      break;
    case FdrKind::kPhysWrite:
      if (outcome_applied_.count({e.node, e.txn}) > 0) {
        Flag(e, ProbeRule::kCommitBeforeRead,
             "write of " + e.txn.ToString() +
                 " served after its commit was applied");
      }
      known_values_.insert(e.b);
      break;
    case FdrKind::kPhysRead:
      if (e.has_txn() &&
          outcome_applied_.count({e.node, e.txn}) > 0) {
        Flag(e, ProbeRule::kCommitBeforeRead,
             "read of " + e.txn.ToString() +
                 " served after its commit was applied");
      }
      if (known_values_.count(e.b) == 0) {
        Flag(e, ProbeRule::kDurableRead,
             "node " + std::to_string(e.node) + " served obj " +
                 std::to_string(e.a) +
                 " with a value tracing to no staged write (hash " +
                 std::to_string(e.b) + ")");
      }
      break;
    default:
      break;
  }
}

void ProbeEngine::Flag(const FdrEvent& e, ProbeRule rule,
                       std::string detail) {
  ctr_violations_->Increment();
  if (!first_.has_value()) {
    first_ = Violation{rule, std::move(detail), e};
    if (recorder_ != nullptr) {
      FdrEvent mark;
      mark.ts_us = e.ts_us;
      mark.node = e.node;
      mark.kind = FdrKind::kProbeViolation;
      mark.txn = e.txn;
      mark.a = static_cast<uint64_t>(rule);
      recorder_->Record(mark);
    }
  }
}

bool ProbeEngine::flagged() const {
  if (thread_safe_) {
    std::lock_guard<std::mutex> lock(mu_);
    return first_.has_value();
  }
  return first_.has_value();
}

std::optional<ProbeEngine::Violation> ProbeEngine::first() const {
  if (thread_safe_) {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }
  return first_;
}

std::string ProbeEngine::Describe() const {
  const std::optional<Violation> v = first();
  if (!v.has_value()) return "";
  return std::string(ProbeRuleName(v->rule)) + ": " + v->detail +
         " (node " + std::to_string(v->event.node) + " at " +
         std::to_string(v->event.ts_us) + "us)";
}

}  // namespace vp::obs
