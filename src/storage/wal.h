// Write-ahead log of transaction state transitions, kept on the simulated
// stable device (see stable_store.h).
//
// The protocol's atomic-commitment layer is presumed-abort 2PC: a
// participant that staged a write and then lost its memory must be able to
// tell, after reboot, whether the transaction (a) is still undecided — in
// which case it re-stages the write and asks the coordinator — or (b) was
// already resolved locally before the crash. A coordinator must remember
// the commit decisions it announced (aborts are presumed and need no
// record). Three record types cover this:
//
//   kPrepare  — participant staged a write for (txn, obj): value + date.
//   kOutcome  — participant applied the decision for txn locally
//               (committed or aborted); earlier prepares for txn are dead.
//   kDecision — coordinator decided commit for txn. Abort decisions are
//               never logged (presumed abort).
//
// Every record is framed with its on-device length and an FNV-1a checksum
// of its content, exactly as written. The device may lie afterwards: a
// crash can tear the in-flight frame (torn tail) and at-rest faults can
// flip bytes in a frame (bit rot) — the frame then fails verification
// while still carrying whatever content the rot produced, which is what a
// checksum-less reader would serve verbatim. Salvage() is the recovery
// pass: it truncates an invalid tail (safe under presumed abort — a frame
// that never completed its fsync never had externally visible effects) and
// flags mid-log corruption, which cannot be truncated away and poisons
// everything derived from the log (see StableStore quarantine).
//
// Replay is a single forward pass; see NodeBase::ReplayWal.
#ifndef VPART_STORAGE_WAL_H_
#define VPART_STORAGE_WAL_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/vp_id.h"

namespace vp::storage {

struct WalRecord {
  enum class Type : uint8_t { kPrepare, kOutcome, kDecision };

  Type type = Type::kPrepare;
  TxnId txn;
  // Configuration epoch the transition executed under: every record — and
  // hence every decision replayed after a crash — is attributable to
  // exactly one epoch.
  EpochId epoch = 0;
  // kPrepare only:
  ObjectId obj = kInvalidObject;
  Value value;
  VpId date = kEpochDate;
  // kOutcome only:
  bool committed = false;
};

const char* WalRecordTypeName(WalRecord::Type type);

/// One record as framed on the device: the content plus the length and
/// checksum that were written alongside it. Corruption mutates the content
/// (or tears the frame) while the framing keeps its as-written values, so
/// verification fails exactly when content and framing disagree.
struct WalFrame {
  WalRecord rec;
  uint32_t len = 0;       // Frame length as written.
  uint64_t checksum = 0;  // FNV-1a of the content as written.
  bool torn = false;      // Half-written by a crashed persist.
};

/// Append-only record sequence with byte accounting. Each record models one
/// device write; the owning StableStore charges the fsync.
class WriteAheadLog {
 public:
  void Append(WalRecord rec);

  const std::vector<WalFrame>& frames() const { return frames_; }
  uint64_t bytes() const { return bytes_; }
  void Clear();

  /// Size one record would occupy on the device (header + payload bytes).
  static uint64_t RecordBytes(const WalRecord& rec);
  /// FNV-1a checksum over the record's serialized content.
  static uint64_t Checksum(const WalRecord& rec);
  /// Frame verification: not torn, and length + checksum match the content.
  static bool Intact(const WalFrame& frame);

  // --- Device-fault entry points (simulated corruption) ---

  /// Bit rot: flips a byte of frame `index`'s content at rest. The framing
  /// keeps its as-written checksum, so verification now fails while the
  /// rotted content is what a checksum-less reader replays. Returns false
  /// (no-op) for an out-of-range index.
  bool RotRecord(size_t index);

  /// Torn write at rest: frame `index` turns out to be half-written (its
  /// payload truncated, its framing short). Returns false if out of range.
  bool TearRecord(size_t index);

  /// Crash tearing of the newest frame (the persist in flight at crash
  /// time): `drop` removes it outright, otherwise it is half-written.
  void TearTail(bool drop);

  /// A phantom in-flight frame: garbage that never completed its write.
  /// Used when the crash tears a persist whose completion was never
  /// observed by the node (empty log, or a tail whose completion was
  /// already externalized — see StableStore::TearTailOnCrash).
  void AppendTornPhantom();

  /// Salvage pass over the frames (run by StableStore::BeginReplay under
  /// the checksummed integrity mode). Invalid frames at the tail are
  /// truncated; an invalid frame *before* valid frames cannot be explained
  /// as a torn in-flight write, so it is dropped and reported as mid-log
  /// corruption (the caller quarantines the device's copies).
  struct SalvageResult {
    uint32_t tail_truncated = 0;
    uint32_t mid_dropped = 0;
    bool quarantined() const { return mid_dropped > 0; }
  };
  SalvageResult Salvage();

 private:
  std::vector<WalFrame> frames_;
  uint64_t bytes_ = 0;
};

}  // namespace vp::storage

#endif  // VPART_STORAGE_WAL_H_
