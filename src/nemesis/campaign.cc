#include "nemesis/campaign.h"

#include <set>
#include <sstream>
#include <utility>

namespace vp::nemesis {

namespace {

/// Which fault kinds / knobs a plan exercises (for the coverage table).
std::set<std::string> PlanCoverage(const FaultPlan& plan) {
  std::set<std::string> kinds;
  for (const net::FaultAction& a : plan.actions) {
    kinds.insert(net::FaultKindName(a.kind));
  }
  if (plan.drop_prob > 0) kinds.insert("drop_prob");
  if (plan.slow_prob > 0) kinds.insert("slow_prob");
  if (plan.dup_prob > 0) kinds.insert("dup_prob");
  if (plan.reorder_prob > 0) kinds.insert("reorder_prob");
  // Pseudo-kinds for the fault model and copy geometry.
  if (plan.durability == storage::DurabilityMode::kWal) {
    kinds.insert("wal_durability");
  } else if (plan.durability == storage::DurabilityMode::kNoWal) {
    kinds.insert("nowal_strawman");
  }
  if (!plan.placement.empty()) kinds.insert("weighted_placement");
  if (plan.reliable) kinds.insert("reliable_delivery");
  // "reconfig" itself lands in `kinds` via FaultKindName above; the gating
  // pseudo-kind tells negative-control campaigns apart in the table.
  if (!plan.epoch_gating) kinds.insert("gating_disabled");
  // "bit_rot"/"torn_write"/"crash_torn" land via FaultKindName; the
  // integrity pseudo-kind tells the rot-serving control apart.
  if (plan.integrity == storage::IntegrityMode::kNoChecksum) {
    kinds.insert("nochecksum_control");
  }
  return kinds;
}

}  // namespace

CampaignResult RunCampaign(const CampaignConfig& config,
                           const CampaignProgressFn& progress) {
  CampaignResult result;
  for (uint32_t i = 0; i < config.n_seeds; ++i) {
    const uint64_t seed = config.first_seed + i;
    FaultPlan plan = GeneratePlan(seed, config.generator);
    plan.protocol = config.protocol;

    RunOutcome outcome = RunPlan(plan);
    ++result.runs;
    result.committed += outcome.committed;
    result.aborted += outcome.aborted;
    result.duplicated += outcome.duplicated;
    result.reordered += outcome.reordered;
    result.retransmits += outcome.retransmits;
    result.delivery_timeouts += outcome.delivery_timeouts;
    result.dups_suppressed += outcome.dups_suppressed;
    result.stable.fsyncs += outcome.stable.fsyncs;
    result.stable.wal_appends += outcome.stable.wal_appends;
    result.stable.wal_bytes += outcome.stable.wal_bytes;
    result.stable.copy_persist_bytes += outcome.stable.copy_persist_bytes;
    result.stable.wal_replay_records += outcome.stable.wal_replay_records;
    result.stable.reboots += outcome.stable.reboots;
    result.stable.torn_truncated += outcome.stable.torn_truncated;
    result.stable.quarantined += outcome.stable.quarantined;
    result.stable.scrub_repairs += outcome.stable.scrub_repairs;
    for (const auto& [name, value] : outcome.metrics.counters) {
      result.metrics[name] += value;
    }
    for (const std::string& kind : PlanCoverage(plan)) {
      ++result.fault_mix[kind];
    }
    if (!outcome.progress) ++result.no_progress;

    if (outcome.violation()) {
      ++result.violations;
      CampaignFailure failure;
      failure.seed = seed;
      failure.plan = plan;
      failure.shrunk = plan;
      failure.outcome = outcome;
      if (config.shrink_failures &&
          result.failures.size() <
              static_cast<size_t>(config.max_shrinks)) {
        ShrinkResult shrunk = ShrinkPlan(plan, config.shrink);
        if (shrunk.input_failed) {
          failure.shrunk = std::move(shrunk.plan);
          failure.outcome = std::move(shrunk.outcome);
          failure.was_shrunk = true;
        }
      }
      result.failures.push_back(std::move(failure));
    } else {
      ++result.passed;
    }
    if (progress) progress(seed, outcome);
  }
  return result;
}

std::string FormatCampaign(const CampaignConfig& config,
                           const CampaignResult& result) {
  std::ostringstream out;
  out << "nemesis campaign: protocol=" << harness::ProtocolName(config.protocol)
      << " seeds=[" << config.first_seed << ", "
      << config.first_seed + config.n_seeds - 1 << "]\n";
  out << "  runs        " << result.runs << "\n";
  out << "  passed      " << result.passed << "\n";
  out << "  violations  " << result.violations << "\n";
  out << "  no-progress " << result.no_progress << "\n";
  out << "  committed   " << result.committed << "\n";
  out << "  aborted     " << result.aborted << "\n";
  out << "  dup msgs    " << result.duplicated << "\n";
  out << "  reordered   " << result.reordered << "\n";
  if (result.retransmits > 0 || result.delivery_timeouts > 0 ||
      result.dups_suppressed > 0) {
    out << "reliable delivery (summed over runs):\n";
    out << "  retransmits " << result.retransmits << "\n";
    out << "  deadline timeouts " << result.delivery_timeouts << "\n";
    out << "  dups suppressed   " << result.dups_suppressed << "\n";
  }
  if (result.stable.fsyncs > 0 || result.stable.reboots > 0) {
    out << "stable storage (summed over runs):\n";
    out << "  fsyncs      " << result.stable.fsyncs << "\n";
    out << "  wal appends " << result.stable.wal_appends << "\n";
    out << "  wal bytes   " << result.stable.wal_bytes << "\n";
    out << "  copy bytes  " << result.stable.copy_persist_bytes << "\n";
    out << "  replayed    " << result.stable.wal_replay_records << "\n";
    out << "  reboots     " << result.stable.reboots << "\n";
    if (result.stable.torn_truncated > 0 || result.stable.quarantined > 0 ||
        result.stable.scrub_repairs > 0) {
      out << "  torn trunc  " << result.stable.torn_truncated << "\n";
      out << "  quarantined " << result.stable.quarantined << "\n";
      out << "  scrub reps  " << result.stable.scrub_repairs << "\n";
    }
  }
  if (!result.metrics.empty()) {
    out << "metrics (counters summed over runs):\n";
    for (const auto& [name, value] : result.metrics) {
      if (value == 0) continue;
      out << "  " << name;
      for (size_t pad = name.size(); pad < 32; ++pad) out << ' ';
      out << value << "\n";
    }
  }
  out << "fault-mix coverage (plans containing each fault kind):\n";
  for (const auto& [kind, count] : result.fault_mix) {
    out << "  " << kind;
    for (size_t pad = kind.size(); pad < 18; ++pad) out << ' ';
    out << count << "\n";
  }
  for (const CampaignFailure& f : result.failures) {
    out << "violation @ seed " << f.seed << ": " << f.outcome.failure << "\n";
    out << "  actions " << f.plan.actions.size();
    if (f.was_shrunk) {
      out << " -> " << f.shrunk.actions.size() << " (shrunk), processors "
          << f.plan.n_processors << " -> " << f.shrunk.n_processors;
    } else {
      out << " (not shrunk)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace vp::nemesis
